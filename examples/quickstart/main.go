// Quickstart: simulate one workload on the baseline 16-socket system and
// on StarNUMA, and print the headline comparison.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"starnuma/internal/core"
	"starnuma/internal/stats"
	"starnuma/internal/workload"
)

func main() {
	// A scaled-down BFS instance (the paper's most-studied workload).
	spec, err := workload.ByName("BFS", 0.125)
	if err != nil {
		log.Fatal(err)
	}

	sim := core.QuickSim()

	// Baseline: 16 sockets, no pool, perfect-knowledge migration.
	baseCfg := sim
	baseCfg.Policy = core.PolicyPerfectBaseline
	base, err := core.Run(core.BaselineSystem(), baseCfg, spec)
	if err != nil {
		log.Fatal(err)
	}

	// StarNUMA: CXL memory pool + T16 region tracker + Algorithm 1.
	star, err := core.Run(core.StarNUMASystem(), sim, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (%d pages, MPKI %.1f)\n\n", spec.Name, spec.FootprintPages, spec.MPKI)
	show := func(name string, r *core.Result) {
		fr := r.AMAT.Breakdown().Fractions()
		fmt.Printf("%-9s IPC %.3f  AMAT %7.1fns (unloaded %5.1f + contention %5.1f)\n",
			name, r.IPC, r.AMAT.Measured().Nanos(), r.AMAT.Unloaded().Nanos(), r.AMAT.Contention().Nanos())
		fmt.Printf("          accesses: %.0f%% local, %.0f%% 1-hop, %.0f%% 2-hop, %.0f%% pool, %.0f%% BT\n",
			100*fr[stats.Local], 100*fr[stats.OneHop], 100*fr[stats.TwoHop],
			100*fr[stats.Pool], 100*(fr[stats.BTSocket]+fr[stats.BTPool]))
	}
	show("baseline", base)
	show("starnuma", star)
	fmt.Printf("\nspeedup: %.2fx  (pool holds %d pages; %.0f%% of migrations targeted the pool)\n",
		core.Speedup(star, base), star.PoolPages, 100*star.MigrStats.PoolFraction())
}
