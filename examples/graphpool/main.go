// Graphpool: the paper's motivating scenario — graph analytics on a
// large NUMA machine. For each GAP kernel this example (1) characterises
// the page sharing pattern to expose vagabond pages (Fig. 2 style), and
// (2) shows how much of the NUMA penalty StarNUMA's pool removes.
//
// Run with:
//
//	go run ./examples/graphpool
package main

import (
	"fmt"
	"log"

	"starnuma/internal/core"
	"starnuma/internal/stats"
	"starnuma/internal/workload"
)

func main() {
	graphs := []string{"BFS", "CC", "SSSP", "TC"}
	sim := core.QuickSim()
	baseCfg := sim
	baseCfg.Policy = core.PolicyPerfectBaseline

	fmt.Println("vagabond pages in GAP graph kernels (16-socket system)")
	fmt.Println()

	for _, name := range graphs {
		spec, err := workload.ByName(name, 0.125)
		if err != nil {
			log.Fatal(err)
		}

		// Characterise sharing: what fraction of accesses hit pages
		// without a good home socket (>8 sharers)?
		pages, accs := spec.SharingHistogram(16)
		var vagabondPages, vagabondAccs float64
		for k := 9; k <= 16; k++ {
			vagabondPages += pages[k]
			vagabondAccs += accs[k]
		}

		base, err := core.Run(core.BaselineSystem(), baseCfg, spec)
		if err != nil {
			log.Fatal(err)
		}
		star, err := core.Run(core.StarNUMASystem(), sim, spec)
		if err != nil {
			log.Fatal(err)
		}

		bFr := base.AMAT.Breakdown().Fractions()
		sFr := star.AMAT.Breakdown().Fractions()
		fmt.Printf("%-5s %4.0f%% of pages are vagabond (>8 sharers) yet take %2.0f%% of accesses\n",
			name, 100*vagabondPages, 100*vagabondAccs)
		fmt.Printf("      baseline: %2.0f%% of accesses cross chassis (2-hop), AMAT %5.0fns, IPC %.3f\n",
			100*bFr[stats.TwoHop], base.AMAT.Measured().Nanos(), base.IPC)
		fmt.Printf("      starnuma: 2-hop down to %2.0f%%, %2.0f%% served by the pool, AMAT %5.0fns, IPC %.3f\n",
			100*sFr[stats.TwoHop], 100*(sFr[stats.Pool]+sFr[stats.BTPool]),
			star.AMAT.Measured().Nanos(), star.IPC)
		fmt.Printf("      speedup %.2fx\n\n", core.Speedup(star, base))
	}
}
