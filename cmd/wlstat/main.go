// Command wlstat characterises the synthetic workload models: sharing
// distributions (Fig. 2/13 style), derived core-model parameters, and
// per-class layout. Useful when adding or re-calibrating a workload.
//
// Usage:
//
//	wlstat                 # summarise the whole suite
//	wlstat -workload BFS   # full detail for one workload
package main

import (
	"flag"
	"fmt"
	"os"

	"starnuma/internal/workload"
)

func main() {
	var (
		wl    = flag.String("workload", "", "detail one workload (default: summarise all)")
		scale = flag.Float64("scale", 0.25, "footprint scale")
	)
	flag.Parse()

	if *wl != "" {
		spec, err := workload.ByName(*wl, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wlstat: %v\n", err)
			os.Exit(1)
		}
		detail(spec)
		return
	}
	fmt.Printf("%-9s %6s %7s %5s %5s %9s %8s %9s\n",
		"workload", "IPC1", "MPKI", "MLP", "IPC0", "pages", "classes", ">8-share%")
	for _, spec := range workload.Suite(*scale) {
		_, accs := spec.SharingHistogram(16)
		var vagabond float64
		for k := 9; k <= 16; k++ {
			vagabond += accs[k]
		}
		fmt.Printf("%-9s %6.2f %7.1f %5d %5.2f %9d %8d %8.0f%%\n",
			spec.Name, spec.SingleSocketIPC, spec.MPKI, spec.MLP,
			spec.ZeroLoadIPC(192), spec.FootprintPages, len(spec.Classes), 100*vagabond)
	}
}

func detail(spec workload.Spec) {
	fmt.Printf("%s: footprint %d pages (%.0f MB), MPKI %.1f, single-socket IPC %.2f, MLP %d, zero-load IPC %.2f\n\n",
		spec.Name, spec.FootprintPages,
		float64(spec.FootprintPages)*workload.PageBytes/1e6,
		spec.MPKI, spec.SingleSocketIPC, spec.MLP, spec.ZeroLoadIPC(192))

	fmt.Printf("%-12s %8s %9s %10s %9s\n", "class", "pages%", "accesses%", "sharers", "write%")
	for _, c := range spec.Classes {
		fmt.Printf("%-12s %7.1f%% %8.1f%% %7d-%-3d %8.1f%%\n",
			c.Name, 100*c.PageShare, 100*c.AccessShare,
			c.MinSharers, c.MaxSharers, 100*c.WriteFrac)
	}

	pages, accs := spec.SharingHistogram(16)
	fmt.Printf("\n%-10s %8s %10s\n", "sharers", "pages%", "accesses%")
	for _, b := range [][2]int{{1, 1}, {2, 4}, {5, 8}, {9, 15}, {16, 16}} {
		var p, a float64
		for k := b[0]; k <= b[1]; k++ {
			p += pages[k]
			a += accs[k]
		}
		label := fmt.Sprintf("%d", b[0])
		if b[1] != b[0] {
			label = fmt.Sprintf("%d-%d", b[0], b[1])
		}
		fmt.Printf("%-10s %7.1f%% %9.1f%%\n", label, 100*p, 100*a)
	}
}
