// Command benchgate compares a fresh `expall -benchjson` report against
// a committed baseline and fails when step-C simulation throughput
// (windows per second) regressed beyond tolerance.
//
// Usage:
//
//	benchgate [-max-drop 0.10] [-warn-gain 0.10] [-max-exp-drop 0.25] baseline.json fresh.json
//
// The gate reads the overall windows_per_sec of both reports (deriving
// it from windows_done / suite_seconds for baselines written before the
// field existed), and:
//
//   - exits 1 when the fresh throughput is more than -max-drop below
//     the baseline (a regression);
//   - warns on stderr when it is more than -warn-gain above it — a
//     signal the committed baseline is stale and should be regenerated
//     so the gate keeps teeth;
//   - exits 2 on malformed input (unreadable files, zero-window runs),
//     so CI never confuses "could not measure" with "fast enough".
//
// It also lines up the two reports' per-experiment entries and prints
// each experiment's throughput delta. Experiments with zero windows on
// either side simulated nothing (in-suite memo recalls) and are
// skipped, not compared; -max-exp-drop (off by default) turns a
// per-experiment drop beyond the fraction into a failure too.
//
// Both reports must come from cache-disabled runs: a cache hit does no
// step-C work, making windows_per_sec meaningless (and zero-window
// reports are rejected). docs/PERFORMANCE.md documents the measurement
// methodology.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// report is the subset of expall's -benchjson document the gate reads.
type report struct {
	SuiteSeconds  float64      `json:"suite_seconds"`
	WindowsDone   int64        `json:"windows_done"`
	WindowsPerSec float64      `json:"windows_per_sec"`
	Experiments   []experiment `json:"experiments"`
}

// experiment is one per-experiment timing entry. Entries with zero
// windows did no step-C work (every run recalled from the in-suite
// memo); their throughput is undefined and the gate skips them.
type experiment struct {
	ID            string  `json:"id"`
	Windows       int64   `json:"windows"`
	WindowsPerSec float64 `json:"windows_per_sec"`
}

// throughput returns the report's overall windows/sec, deriving it for
// baselines that predate the windows_per_sec field.
func throughput(r report) (float64, error) {
	if r.WindowsDone <= 0 {
		return 0, fmt.Errorf("report has no simulated windows (cache-enabled run?)")
	}
	if r.SuiteSeconds <= 0 {
		return 0, fmt.Errorf("report has non-positive suite_seconds %v", r.SuiteSeconds)
	}
	if r.WindowsPerSec > 0 {
		return r.WindowsPerSec, nil
	}
	return float64(r.WindowsDone) / r.SuiteSeconds, nil
}

// verdict compares fresh against base throughput. fail means the gate
// should exit non-zero; warn carries a non-fatal staleness message.
func verdict(base, fresh, maxDrop, warnGain float64) (fail bool, warn string, summary string) {
	delta := fresh/base - 1
	summary = fmt.Sprintf("windows/sec: baseline %.2f, fresh %.2f (%+.1f%%)", base, fresh, delta*100)
	if delta < -maxDrop {
		return true, "", summary
	}
	if delta > warnGain {
		warn = fmt.Sprintf("fresh throughput is %.1f%% above the committed baseline; "+
			"regenerate the baseline so future regressions are measured against it", delta*100)
	}
	return false, warn, summary
}

// compareExperiments lines up the two reports' per-experiment entries
// by ID and reports each delta. Entries with zero windows on either
// side are skipped — not treated as infinitely slow or malformed — and
// counted instead. When maxExpDrop > 0, any compared experiment whose
// throughput dropped more than that fraction fails the gate.
func compareExperiments(base, fresh report, maxExpDrop float64) (lines []string, skipped int, fail bool) {
	bySrc := make(map[string]experiment, len(base.Experiments))
	for _, e := range base.Experiments {
		bySrc[e.ID] = e
	}
	for _, f := range fresh.Experiments {
		b, ok := bySrc[f.ID]
		if !ok {
			continue
		}
		if b.Windows == 0 || f.Windows == 0 || b.WindowsPerSec <= 0 || f.WindowsPerSec <= 0 {
			skipped++
			continue
		}
		delta := f.WindowsPerSec/b.WindowsPerSec - 1
		mark := ""
		if maxExpDrop > 0 && delta < -maxExpDrop {
			mark = "  REGRESSED"
			fail = true
		}
		lines = append(lines, fmt.Sprintf("  %-12s baseline %8.2f, fresh %8.2f (%+.1f%%)%s",
			f.ID, b.WindowsPerSec, f.WindowsPerSec, delta*100, mark))
	}
	return lines, skipped, fail
}

func readReport(path string) (report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	var (
		maxDrop    = flag.Float64("max-drop", 0.10, "fail when windows/sec drops more than this fraction below baseline")
		warnGain   = flag.Float64("warn-gain", 0.10, "warn when windows/sec exceeds baseline by more than this fraction")
		maxExpDrop = flag.Float64("max-exp-drop", 0, "also fail when any single experiment drops more than this fraction (0 = report only)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-max-drop F] [-warn-gain F] baseline.json fresh.json")
		os.Exit(2)
	}
	fail := false
	var rates [2]float64
	var reports [2]report
	for i, path := range flag.Args() {
		r, err := readReport(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		rate, err := throughput(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
			os.Exit(2)
		}
		rates[i] = rate
		reports[i] = r
	}
	failed, warn, summary := verdict(rates[0], rates[1], *maxDrop, *warnGain)
	fmt.Println(summary)
	lines, skipped, expFailed := compareExperiments(reports[0], reports[1], *maxExpDrop)
	for _, l := range lines {
		fmt.Println(l)
	}
	if skipped > 0 {
		fmt.Printf("  (%d zero-window experiments skipped)\n", skipped)
	}
	if warn != "" {
		fmt.Fprintf(os.Stderr, "benchgate: warning: %s\n", warn)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: throughput dropped more than %.0f%% below baseline\n", *maxDrop*100)
		fail = true
	}
	if expFailed {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: an experiment dropped more than %.0f%% below baseline\n", *maxExpDrop*100)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}
