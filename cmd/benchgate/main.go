// Command benchgate compares a fresh `expall -benchjson` report against
// a committed baseline and fails when step-C simulation throughput
// (windows per second) regressed beyond tolerance.
//
// Usage:
//
//	benchgate [-max-drop 0.10] [-warn-gain 0.10] baseline.json fresh.json
//
// The gate reads the overall windows_per_sec of both reports (deriving
// it from windows_done / suite_seconds for baselines written before the
// field existed), and:
//
//   - exits 1 when the fresh throughput is more than -max-drop below
//     the baseline (a regression);
//   - warns on stderr when it is more than -warn-gain above it — a
//     signal the committed baseline is stale and should be regenerated
//     so the gate keeps teeth;
//   - exits 2 on malformed input (unreadable files, zero-window runs),
//     so CI never confuses "could not measure" with "fast enough".
//
// Both reports must come from cache-disabled runs: a cache hit does no
// step-C work, making windows_per_sec meaningless (and zero-window
// reports are rejected). docs/PERFORMANCE.md documents the measurement
// methodology.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// report is the subset of expall's -benchjson document the gate reads.
type report struct {
	SuiteSeconds  float64 `json:"suite_seconds"`
	WindowsDone   int64   `json:"windows_done"`
	WindowsPerSec float64 `json:"windows_per_sec"`
}

// throughput returns the report's overall windows/sec, deriving it for
// baselines that predate the windows_per_sec field.
func throughput(r report) (float64, error) {
	if r.WindowsDone <= 0 {
		return 0, fmt.Errorf("report has no simulated windows (cache-enabled run?)")
	}
	if r.SuiteSeconds <= 0 {
		return 0, fmt.Errorf("report has non-positive suite_seconds %v", r.SuiteSeconds)
	}
	if r.WindowsPerSec > 0 {
		return r.WindowsPerSec, nil
	}
	return float64(r.WindowsDone) / r.SuiteSeconds, nil
}

// verdict compares fresh against base throughput. fail means the gate
// should exit non-zero; warn carries a non-fatal staleness message.
func verdict(base, fresh, maxDrop, warnGain float64) (fail bool, warn string, summary string) {
	delta := fresh/base - 1
	summary = fmt.Sprintf("windows/sec: baseline %.2f, fresh %.2f (%+.1f%%)", base, fresh, delta*100)
	if delta < -maxDrop {
		return true, "", summary
	}
	if delta > warnGain {
		warn = fmt.Sprintf("fresh throughput is %.1f%% above the committed baseline; "+
			"regenerate the baseline so future regressions are measured against it", delta*100)
	}
	return false, warn, summary
}

func readReport(path string) (report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	var (
		maxDrop  = flag.Float64("max-drop", 0.10, "fail when windows/sec drops more than this fraction below baseline")
		warnGain = flag.Float64("warn-gain", 0.10, "warn when windows/sec exceeds baseline by more than this fraction")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-max-drop F] [-warn-gain F] baseline.json fresh.json")
		os.Exit(2)
	}
	fail := false
	var rates [2]float64
	for i, path := range flag.Args() {
		r, err := readReport(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		rate, err := throughput(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
			os.Exit(2)
		}
		rates[i] = rate
	}
	failed, warn, summary := verdict(rates[0], rates[1], *maxDrop, *warnGain)
	fmt.Println(summary)
	if warn != "" {
		fmt.Fprintf(os.Stderr, "benchgate: warning: %s\n", warn)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: throughput dropped more than %.0f%% below baseline\n", *maxDrop*100)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}
