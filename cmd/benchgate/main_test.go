package main

import (
	"math"
	"strings"
	"testing"
)

func TestThroughputPrefersExplicitField(t *testing.T) {
	r := report{SuiteSeconds: 100, WindowsDone: 500, WindowsPerSec: 7.5}
	got, err := throughput(r)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7.5 {
		t.Fatalf("throughput = %v, want the explicit 7.5", got)
	}
}

func TestThroughputDerivesForOldSchema(t *testing.T) {
	r := report{SuiteSeconds: 250, WindowsDone: 500}
	got, err := throughput(r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("throughput = %v, want derived 2.0", got)
	}
}

func TestThroughputRejectsUnmeasurableReports(t *testing.T) {
	cases := []report{
		{SuiteSeconds: 100, WindowsDone: 0},  // full cache hit
		{SuiteSeconds: 0, WindowsDone: 500},  // no wall time
		{SuiteSeconds: -1, WindowsDone: 500}, // nonsense
	}
	for _, r := range cases {
		if _, err := throughput(r); err == nil {
			t.Errorf("throughput(%+v) accepted an unmeasurable report", r)
		}
	}
}

func TestVerdictFailsOnRegression(t *testing.T) {
	fail, _, summary := verdict(10.0, 8.9, 0.10, 0.10) // -11%
	if !fail {
		t.Fatalf("11%% drop passed the 10%% gate (summary: %s)", summary)
	}
}

func TestVerdictAllowsSmallDrop(t *testing.T) {
	fail, warn, _ := verdict(10.0, 9.5, 0.10, 0.10) // -5%
	if fail {
		t.Fatal("5% drop failed the 10% gate")
	}
	if warn != "" {
		t.Fatalf("5%% drop produced a staleness warning: %s", warn)
	}
}

func TestVerdictWarnsOnStaleBaseline(t *testing.T) {
	fail, warn, _ := verdict(2.0, 8.0, 0.10, 0.10) // +300%
	if fail {
		t.Fatal("a 4x gain failed the gate")
	}
	if warn == "" {
		t.Fatal("a 4x gain produced no stale-baseline warning")
	}
	if !strings.Contains(warn, "regenerate") {
		t.Fatalf("warning does not tell the user what to do: %s", warn)
	}
}

func TestVerdictBoundaryIsInclusive(t *testing.T) {
	// Exactly -10% must pass: the gate fails only strictly beyond it.
	fail, _, _ := verdict(10.0, 9.0, 0.10, 0.10)
	if fail {
		t.Fatal("exactly -10% failed a 10% gate")
	}
}
