package main

import (
	"math"
	"strings"
	"testing"
)

func TestThroughputPrefersExplicitField(t *testing.T) {
	r := report{SuiteSeconds: 100, WindowsDone: 500, WindowsPerSec: 7.5}
	got, err := throughput(r)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7.5 {
		t.Fatalf("throughput = %v, want the explicit 7.5", got)
	}
}

func TestThroughputDerivesForOldSchema(t *testing.T) {
	r := report{SuiteSeconds: 250, WindowsDone: 500}
	got, err := throughput(r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("throughput = %v, want derived 2.0", got)
	}
}

func TestThroughputRejectsUnmeasurableReports(t *testing.T) {
	cases := []report{
		{SuiteSeconds: 100, WindowsDone: 0},  // full cache hit
		{SuiteSeconds: 0, WindowsDone: 500},  // no wall time
		{SuiteSeconds: -1, WindowsDone: 500}, // nonsense
	}
	for _, r := range cases {
		if _, err := throughput(r); err == nil {
			t.Errorf("throughput(%+v) accepted an unmeasurable report", r)
		}
	}
}

func TestVerdictFailsOnRegression(t *testing.T) {
	fail, _, summary := verdict(10.0, 8.9, 0.10, 0.10) // -11%
	if !fail {
		t.Fatalf("11%% drop passed the 10%% gate (summary: %s)", summary)
	}
}

func TestVerdictAllowsSmallDrop(t *testing.T) {
	fail, warn, _ := verdict(10.0, 9.5, 0.10, 0.10) // -5%
	if fail {
		t.Fatal("5% drop failed the 10% gate")
	}
	if warn != "" {
		t.Fatalf("5%% drop produced a staleness warning: %s", warn)
	}
}

func TestVerdictWarnsOnStaleBaseline(t *testing.T) {
	fail, warn, _ := verdict(2.0, 8.0, 0.10, 0.10) // +300%
	if fail {
		t.Fatal("a 4x gain failed the gate")
	}
	if warn == "" {
		t.Fatal("a 4x gain produced no stale-baseline warning")
	}
	if !strings.Contains(warn, "regenerate") {
		t.Fatalf("warning does not tell the user what to do: %s", warn)
	}
}

func TestVerdictBoundaryIsInclusive(t *testing.T) {
	// Exactly -10% must pass: the gate fails only strictly beyond it.
	fail, _, _ := verdict(10.0, 9.0, 0.10, 0.10)
	if fail {
		t.Fatal("exactly -10% failed a 10% gate")
	}
}

func TestCompareExperimentsSkipsZeroWindows(t *testing.T) {
	base := report{Experiments: []experiment{
		{ID: "fig2", Windows: 0, WindowsPerSec: 0},
		{ID: "fig8a", Windows: 64, WindowsPerSec: 8.0},
		{ID: "fig9", Windows: 64, WindowsPerSec: 8.0},
	}}
	fresh := report{Experiments: []experiment{
		{ID: "fig2", Windows: 0, WindowsPerSec: 0},
		{ID: "fig8a", Windows: 64, WindowsPerSec: 7.9},
		{ID: "fig9", Windows: 0, WindowsPerSec: 0}, // cache recall this run
	}}
	lines, skipped, fail := compareExperiments(base, fresh, 0.25)
	if len(lines) != 1 {
		t.Fatalf("compared %d experiments, want 1: %v", len(lines), lines)
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}
	if fail {
		t.Fatal("a ~1% drop failed the 25% per-experiment gate")
	}
}

func TestCompareExperimentsFailsOnBigDrop(t *testing.T) {
	base := report{Experiments: []experiment{{ID: "fig8a", Windows: 64, WindowsPerSec: 8.0}}}
	fresh := report{Experiments: []experiment{{ID: "fig8a", Windows: 64, WindowsPerSec: 4.0}}}
	_, _, fail := compareExperiments(base, fresh, 0.25)
	if !fail {
		t.Fatal("a 50% per-experiment drop passed the 25% gate")
	}
	// Report-only mode never fails.
	if _, _, fail := compareExperiments(base, fresh, 0); fail {
		t.Fatal("report-only mode (max-exp-drop 0) failed the gate")
	}
}
