// Command tracegen materialises one phase of a synthetic workload's
// LLC-miss stream as a binary trace file (the step-A artifact of the
// evaluation methodology, §IV-A1).
//
// Usage:
//
//	tracegen -workload BFS -phase 0 -instr 1000000 -o bfs.p0.sntr
package main

import (
	"flag"
	"fmt"
	"os"

	"starnuma/internal/trace"
	"starnuma/internal/workload"
)

func main() {
	var (
		wl    = flag.String("workload", "BFS", "workload name (see -listworkloads)")
		lsWl  = flag.Bool("listworkloads", false, "list workload names and exit")
		phase = flag.Int("phase", 0, "phase index to trace")
		instr = flag.Uint64("instr", 1_000_000, "instructions per core to trace")
		scale = flag.Float64("scale", 0.25, "footprint scale")
		out   = flag.String("o", "", "output file (default <workload>.p<phase>.sntr)")
	)
	flag.Parse()

	if *lsWl {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}

	spec, err := workload.ByName(*wl, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	gen, err := workload.NewGenerator(spec, 16, 4)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s.p%d.sntr", spec.Name, *phase)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	n, err := trace.DumpPhase(gen, *phase, *instr, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records (%d cores, %d pages) to %s\n",
		n, gen.NumCores(), gen.NumPages(), path)
}
