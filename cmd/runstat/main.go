// Command runstat inspects the instrumentation attached to StarNUMA
// simulation results (core.Result.Metrics, collected with -metrics).
//
// Usage:
//
//	runstat dump FILE           # full metric dump, one section per run
//	runstat diff FILE1 FILE2    # metric-by-metric comparison
//	runstat top [-n N] FILE     # hottest interconnect links
//
// FILE may be a run manifest written by `starnuma -metrics` / `expall
// -metrics`, a result-cache entry (.starnuma-cache/*.json), or a bare
// JSON-encoded core.Result. All output is deterministic: metrics print
// in sorted name order, so two identical runs diff empty.
package main

import (
	"flag"
	"fmt"
	"os"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: runstat dump FILE | runstat diff FILE1 FILE2 | runstat top [-n N] FILE")
	os.Exit(2)
}

func load(path string) []namedSnapshot {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "runstat: %v\n", err)
		os.Exit(1)
	}
	runs, err := decodeRuns(b, path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "runstat: %s: %v\n", path, err)
		os.Exit(1)
	}
	return runs
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch cmd, args := os.Args[1], os.Args[2:]; cmd {
	case "dump":
		if len(args) != 1 {
			usage()
		}
		fmt.Print(dumpText(load(args[0])))
	case "diff":
		if len(args) != 2 {
			usage()
		}
		fmt.Print(diffText(combined(load(args[0])), combined(load(args[1]))))
	case "top":
		fs := flag.NewFlagSet("top", flag.ExitOnError)
		n := fs.Int("n", 10, "number of links to show")
		fs.Parse(args)
		if fs.NArg() != 1 {
			usage()
		}
		fmt.Print(topText(combined(load(fs.Arg(0))), *n))
	default:
		usage()
	}
}
