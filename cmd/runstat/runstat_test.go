package main

import (
	"encoding/json"
	"strings"
	"testing"

	"starnuma/internal/core"
	"starnuma/internal/exp"
	"starnuma/internal/metrics"
)

func sampleSnapshot(scale uint64) *metrics.Snapshot {
	return &metrics.Snapshot{
		Counters: map[string]uint64{
			"link/upi/s0-s1/busy_ps":   100 * scale,
			"link/upi/s0-s1/queued_ps": 40 * scale,
			"link/upi/s0-s1/tx_bytes":  640 * scale,
			"link/upi/s0-s1/messages":  10 * scale,
			"link/cxl/s0-pool/busy_ps": 300 * scale,
			"coherence/transactions":   7 * scale,
		},
		Gauges: map[string]float64{"sim/ipc": 0.5},
		Histograms: map[string]metrics.Histogram{
			"sim/queue_depth": {Count: 4, Sum: 10, Min: 1, Max: 4,
				Buckets: []metrics.Bucket{{Lo: 1, N: 2}, {Lo: 2, N: 2}}},
		},
		Series: map[string][]metrics.Point{
			"core/instructions": {{T: 0, V: 1000}, {T: 1, V: 1100}},
		},
	}
}

func TestDumpGolden(t *testing.T) {
	runs := []namedSnapshot{{Name: "starnuma-t16|BFS", Snap: sampleSnapshot(1)}}
	got := dumpText(runs)
	want := `== starnuma-t16|BFS ==
counter coherence/transactions 7
counter link/cxl/s0-pool/busy_ps 300
counter link/upi/s0-s1/busy_ps 100
counter link/upi/s0-s1/messages 10
counter link/upi/s0-s1/queued_ps 40
counter link/upi/s0-s1/tx_bytes 640
gauge sim/ipc 0.5
hist sim/queue_depth count=4 sum=10 min=1 max=4 mean=2.500
series core/instructions 0:1000 1:1100

`
	if got != want {
		t.Errorf("dumpText mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestDiffIdenticalAndChanged(t *testing.T) {
	a, b := sampleSnapshot(1), sampleSnapshot(1)
	if got := diffText(a, b); got != "no differences\n" {
		t.Errorf("identical snapshots: %q", got)
	}
	c := sampleSnapshot(2)
	out := diffText(a, c)
	if !strings.Contains(out, "coherence/transactions") {
		t.Errorf("changed counter missing from diff:\n%s", out)
	}
	if strings.Contains(out, "sim/ipc") {
		t.Errorf("unchanged gauge reported:\n%s", out)
	}
}

func TestTopRanksLinksByBusy(t *testing.T) {
	out := topText(sampleSnapshot(1), 1)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 row, got:\n%s", out)
	}
	if !strings.Contains(lines[1], "link/cxl/s0-pool") {
		t.Errorf("hottest link should be cxl (busy 300):\n%s", out)
	}
}

func TestDecodeRunsManifest(t *testing.T) {
	m := &exp.Manifest{
		Schema: exp.ManifestSchema,
		Runs: []exp.ManifestRun{
			{Key: "baseline|BFS", Workload: "BFS", Metrics: sampleSnapshot(1)},
			{Key: "starnuma-t16|BFS", Workload: "BFS"},
		},
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := decodeRuns(b, "manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Name != "baseline|BFS" || runs[1].Snap != nil {
		t.Errorf("unexpected decode: %+v", runs)
	}
}

func TestDecodeRunsCacheEntryAndBareResult(t *testing.T) {
	res := &core.Result{Workload: "BFS", Metrics: sampleSnapshot(1)}

	entry := struct {
		Version string       `json:"version"`
		Key     string       `json:"key"`
		Result  *core.Result `json:"result"`
	}{"starnuma-results-v1", "abc123", res}
	b, err := json.Marshal(entry)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := decodeRuns(b, "abc123.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Name != "abc123" || runs[0].Snap.Empty() {
		t.Errorf("cache entry decode: %+v", runs)
	}

	b, err = json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	runs, err = decodeRuns(b, "res.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Name != "BFS" || runs[0].Snap.Empty() {
		t.Errorf("bare result decode: %+v", runs)
	}
}

func TestDecodeRunsRejectsGarbage(t *testing.T) {
	if _, err := decodeRuns([]byte("not json"), "x"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := decodeRuns([]byte(`{"schema":"bogus-v9"}`), "x"); err == nil {
		t.Error("unknown schema accepted")
	}
}
