package main

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"starnuma/internal/core"
	"starnuma/internal/exp"
	"starnuma/internal/metrics"
)

// namedSnapshot is one run's instrumentation with a display name.
type namedSnapshot struct {
	Name string
	Snap *metrics.Snapshot
}

// decodeRuns extracts the metric snapshots from a JSON document of any
// of the three shapes runstat accepts: an exp run manifest, a runner
// cache entry, or a bare core.Result. name labels bare results that
// carry no key of their own.
func decodeRuns(b []byte, name string) ([]namedSnapshot, error) {
	var probe struct {
		Schema  string          `json:"schema"`
		Version string          `json:"version"`
		Key     string          `json:"key"`
		Result  json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return nil, fmt.Errorf("runstat: not a JSON document: %w", err)
	}
	switch {
	case probe.Schema != "":
		if probe.Schema != exp.ManifestSchema {
			return nil, fmt.Errorf("runstat: unknown manifest schema %q (want %q)", probe.Schema, exp.ManifestSchema)
		}
		var m exp.Manifest
		if err := json.Unmarshal(b, &m); err != nil {
			return nil, fmt.Errorf("runstat: manifest: %w", err)
		}
		var out []namedSnapshot
		for _, r := range m.Runs {
			out = append(out, namedSnapshot{Name: r.Key, Snap: r.Metrics})
		}
		return out, nil
	case probe.Result != nil:
		var res core.Result
		if err := json.Unmarshal(probe.Result, &res); err != nil {
			return nil, fmt.Errorf("runstat: cache entry: %w", err)
		}
		label := probe.Key
		if label == "" {
			label = name
		}
		return []namedSnapshot{{Name: label, Snap: res.Metrics}}, nil
	default:
		var res core.Result
		if err := json.Unmarshal(b, &res); err != nil {
			return nil, fmt.Errorf("runstat: result: %w", err)
		}
		label := res.Workload
		if label == "" {
			label = name
		}
		return []namedSnapshot{{Name: label, Snap: res.Metrics}}, nil
	}
}

// combined merges every run's snapshot (in listed order) into one.
func combined(runs []namedSnapshot) *metrics.Snapshot {
	s := &metrics.Snapshot{}
	for _, r := range runs {
		s.Merge(r.Snap)
	}
	return s
}

// dumpText renders every run's full metric dump, one section per run.
func dumpText(runs []namedSnapshot) string {
	var b strings.Builder
	for _, r := range runs {
		fmt.Fprintf(&b, "== %s ==\n", r.Name)
		if r.Snap.Empty() {
			b.WriteString("(no metrics; run with -metrics to collect)\n")
		} else {
			b.WriteString(r.Snap.Dump())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// diffText compares two combined snapshots counter by counter and gauge
// by gauge, reporting only entries that differ. Metrics present on one
// side only show "-" for the missing side.
func diffText(a, b *metrics.Snapshot) string {
	var out strings.Builder
	names := union(a.Names(), b.Names())
	for _, n := range names {
		av, aok := lookupValue(a, n)
		bv, bok := lookupValue(b, n)
		if aok && bok && av == bv {
			continue
		}
		as, bs := "-", "-"
		if aok {
			as = av
		}
		if bok {
			bs = bv
		}
		fmt.Fprintf(&out, "%-48s %20s -> %s\n", n, as, bs)
	}
	if out.Len() == 0 {
		return "no differences\n"
	}
	return out.String()
}

// lookupValue renders metric n's value in s, whichever section holds it.
func lookupValue(s *metrics.Snapshot, n string) (string, bool) {
	if s == nil {
		return "", false
	}
	if v, ok := s.Counters[n]; ok {
		return fmt.Sprintf("%d", v), true
	}
	if v, ok := s.Gauges[n]; ok {
		return fmt.Sprintf("%g", v), true
	}
	if h, ok := s.Histograms[n]; ok {
		return fmt.Sprintf("count=%d mean=%.3f", h.Count, h.Mean()), true
	}
	if p, ok := s.Series[n]; ok {
		return fmt.Sprintf("%d points", len(p)), true
	}
	return "", false
}

// union merges two sorted name lists, deduplicated.
func union(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, n := range append(append([]string{}, a...), b...) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// topText ranks the interconnect links of a combined snapshot by wire
// occupancy ("link/.../busy_ps" counters), hottest first.
func topText(s *metrics.Snapshot, n int) string {
	type hot struct {
		name string
		busy uint64
	}
	var links []hot
	for _, k := range s.Names() {
		if strings.HasPrefix(k, "link/") && strings.HasSuffix(k, "/busy_ps") {
			links = append(links, hot{name: strings.TrimSuffix(k, "/busy_ps"), busy: s.Counters[k]})
		}
	}
	sort.SliceStable(links, func(i, j int) bool {
		if links[i].busy != links[j].busy {
			return links[i].busy > links[j].busy
		}
		return links[i].name < links[j].name
	})
	if len(links) == 0 {
		return "no link metrics (run with -metrics to collect)\n"
	}
	if n > 0 && len(links) > n {
		links = links[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %14s %14s %14s %10s\n", "link", "busy_ps", "queued_ps", "tx_bytes", "messages")
	for _, l := range links {
		fmt.Fprintf(&b, "%-40s %14d %14d %14d %10d\n", l.name, l.busy,
			s.Counters[l.name+"/queued_ps"], s.Counters[l.name+"/tx_bytes"], s.Counters[l.name+"/messages"])
	}
	return b.String()
}
