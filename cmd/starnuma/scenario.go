package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"starnuma/internal/exp"
	"starnuma/internal/runner"
	"starnuma/internal/scenario"
)

// Exit codes of the scenario subcommands. Parse/validation problems and
// assertion failures are distinct so CI can tell a broken scenario file
// from a regression.
const (
	exitOK        = 0
	exitRuntime   = 1 // simulation/IO error
	exitUsage     = 2 // bad usage, unreadable/invalid scenario
	exitAssertion = 3 // scenario ran, one or more assertions failed
)

const scenarioUsage = `usage: starnuma scenario <command> [flags] <file-or-dir>...

Commands:
  run       compile and run scenarios, check their assertions
  validate  parse and compile scenarios without running them
  list      list scenario names and descriptions

Run flags:
  -jobs N         parallel worker slots (0 = GOMAXPROCS)
  -cache DIR      result cache directory (default ` + runner.DefaultCacheDir + `)
  -nocache        disable the persistent result cache
  -progress       report job progress on stderr
  -verdict-dir D  write one <name>.verdict.json manifest per scenario to D
  -v              print every check, not just failures

Arguments name scenario JSON files, or directories whose *.json files
are taken in sorted order.`

// scenarioMain dispatches `starnuma scenario <cmd>`; it returns the
// process exit code.
func scenarioMain(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, scenarioUsage)
		return exitUsage
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "run":
		return scenarioRun(rest)
	case "validate":
		return scenarioValidate(rest)
	case "list":
		return scenarioList(rest)
	case "-h", "-help", "--help", "help":
		fmt.Println(scenarioUsage)
		return exitOK
	default:
		fmt.Fprintf(os.Stderr, "starnuma scenario: unknown command %q\n%s\n", cmd, scenarioUsage)
		return exitUsage
	}
}

// scenarioFiles expands the file-or-directory arguments into a flat
// file list; directories contribute their *.json files in sorted order.
func scenarioFiles(args []string) ([]string, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("no scenario files given")
	}
	var files []string
	for _, arg := range args {
		st, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			files = append(files, arg)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(arg, "*.json"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("%s: no *.json scenario files", arg)
		}
		sort.Strings(matches)
		files = append(files, matches...)
	}
	return files, nil
}

// loadScenario reads, parses and compiles one scenario file.
func loadScenario(file string) (*scenario.Compiled, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	s, err := scenario.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	c, err := scenario.Compile(s)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	return c, nil
}

func scenarioValidate(args []string) int {
	files, err := scenarioFiles(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "starnuma scenario validate: %v\n", err)
		return exitUsage
	}
	code := exitOK
	for _, file := range files {
		c, err := loadScenario(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "invalid  %v\n", err)
			code = exitUsage
			continue
		}
		fmt.Printf("ok       %s (%s, %d workloads, %d events, %d assertions)\n",
			file, c.Name(), len(c.Specs), len(c.Scenario.Events), len(c.Scenario.Assertions))
	}
	return code
}

func scenarioList(args []string) int {
	files, err := scenarioFiles(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "starnuma scenario list: %v\n", err)
		return exitUsage
	}
	code := exitOK
	for _, file := range files {
		c, err := loadScenario(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starnuma scenario list: %v\n", err)
			code = exitUsage
			continue
		}
		fmt.Printf("%-28s %s\n", c.Name(), c.Scenario.Description)
	}
	return code
}

func scenarioRun(args []string) int {
	fs := flag.NewFlagSet("starnuma scenario run", flag.ContinueOnError)
	fs.Usage = func() { fmt.Fprintln(os.Stderr, scenarioUsage) }
	var (
		jobs       = fs.Int("jobs", 0, "parallel worker slots (0 = GOMAXPROCS)")
		cacheDir   = fs.String("cache", runner.DefaultCacheDir, "result cache directory")
		noCache    = fs.Bool("nocache", false, "disable the persistent result cache")
		progress   = fs.Bool("progress", false, "report job progress on stderr")
		verdictDir = fs.String("verdict-dir", "", "write one <name>.verdict.json manifest per scenario to this directory")
		verbose    = fs.Bool("v", false, "print every check, not just failures")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	files, err := scenarioFiles(fs.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "starnuma scenario run: %v\n", err)
		return exitUsage
	}

	// Compile everything up front: a broken file fails the whole
	// invocation before any simulation starts.
	compiled := make([]*scenario.Compiled, len(files))
	for i, file := range files {
		c, err := loadScenario(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starnuma scenario run: %v\n", err)
			return exitUsage
		}
		compiled[i] = c
	}
	if *verdictDir != "" {
		if err := os.MkdirAll(*verdictDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "starnuma scenario run: %v\n", err)
			return exitRuntime
		}
	}

	opts := exp.Options{Jobs: *jobs}
	if !*noCache {
		opts.CacheDir = *cacheDir
	}
	if *progress {
		opts.Reporter = runner.NewTerminalReporter(os.Stderr)
	}
	r := exp.NewRunner(opts)

	code := exitOK
	for i, c := range compiled {
		v, err := r.RunScenario(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starnuma scenario run: %s: %v\n", files[i], err)
			return exitRuntime
		}
		fmt.Println(v.Summary())
		if err := printChecks(os.Stdout, files[i], v, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "starnuma scenario run: %v\n", err)
			return exitRuntime
		}
		if *verdictDir != "" {
			b, err := v.Encode()
			if err == nil {
				err = os.WriteFile(filepath.Join(*verdictDir, c.Name()+".verdict.json"), b, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "starnuma scenario run: %v\n", err)
				return exitRuntime
			}
		}
		if !v.Pass {
			code = exitAssertion
		}
	}
	return code
}

// printChecks writes the per-check lines: failures always (anchored to
// the scenario file:line), passes only when verbose.
func printChecks(w io.Writer, file string, v *scenario.Verdict, verbose bool) error {
	for _, chk := range v.Checks {
		if chk.Pass && !verbose {
			continue
		}
		status := "  pass"
		if !chk.Pass {
			status = "  FAIL"
		}
		loc := file
		if chk.Line > 0 {
			loc = fmt.Sprintf("%s:%d", file, chk.Line)
		}
		if _, err := fmt.Fprintf(w, "%s  %s: %s\n", status, loc, chk.Detail); err != nil {
			return err
		}
	}
	if !v.Pass {
		if _, err := fmt.Fprintf(w, "  (got-vs-expected above; re-run with -verdict-dir for the machine-readable manifest)\n"); err != nil {
			return err
		}
	}
	return nil
}
