package main

import (
	"fmt"
	"os"

	"starnuma/internal/migrate"
)

const policyUsage = `usage: starnuma policy list

Commands:
  list  list registered migration policies and their parameters

Select a policy for a run with -policy name or -policy 'name:{json-params}',
e.g. -policy 'starnuma:{"hi_start":64}'.
`

// policyMain implements the `starnuma policy` subcommands over the
// migrate registry — the same source of truth -policy validation, the
// scenario DSL and the policysweep tournament use.
func policyMain(args []string) int {
	if len(args) == 0 || args[0] != "list" {
		fmt.Fprint(os.Stderr, policyUsage)
		return exitUsage
	}
	for _, d := range migrate.Policies() {
		fmt.Printf("%-18s %s\n", d.Name, d.Doc)
		for _, p := range d.Params {
			fmt.Printf("    %-24s %s (default %g)\n", p.Name, p.Doc, p.Default)
		}
	}
	return exitOK
}
