// Command starnuma runs one experiment of the StarNUMA reproduction and
// prints its table.
//
// Usage:
//
//	starnuma -exp fig8a [-quick] [-scale 0.25] [-phases 6] [-workloads BFS,TC]
//	starnuma -exp fig8a -metrics manifest.json   # collect instrumentation
//	starnuma -exp fig8a -faults plan.json        # inject fabric faults
//	starnuma -exp fig8a -trace trace.json        # record an event trace
//	starnuma -exp fig8a -attrib profiles.json    # attribute stall time
//	starnuma -exp fig8a -cpuprofile cpu.pprof    # profile the run
//	starnuma -list
//
// Declarative scenarios (internal/scenario) run through subcommands:
//
//	starnuma scenario run scenarios/           # run + check assertions
//	starnuma scenario validate scenarios/
//	starnuma scenario list scenarios/
//
// Migration policies come from internal/migrate's registry; select one
// with -policy (name, or name:{json-params}) and enumerate them with:
//
//	starnuma policy list
//
// Stall-attribution documents written by -attrib are inspected with the
// prof subcommands:
//
//	starnuma prof report profiles.json
//	starnuma prof diff -a oracle -b starnuma profiles.json
//	starnuma prof flame profiles.json
//
// Experiment identifiers follow the paper's figure/table numbers; see
// DESIGN.md §5 for the index.
package main

import (
	"flag"
	"fmt"
	"os"

	"starnuma/internal/exp"
	"starnuma/internal/prof"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "scenario" {
		os.Exit(scenarioMain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "policy" {
		os.Exit(policyMain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "prof" {
		os.Exit(profMain(os.Args[2:]))
	}
	var (
		expID  = flag.String("exp", "", "experiment to run (e.g. fig8a, tab4); see -list")
		list   = flag.Bool("list", false, "list experiment identifiers and exit")
		format = flag.String("format", "text", "output format: text, csv, md")
		chart  = flag.Int("chart", -1, "render the given column index as ASCII bars instead")
	)
	cli := exp.AddCLIFlags(flag.CommandLine, false)
	pf := prof.AddFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "starnuma: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	if *list {
		for _, e := range exp.Experiments() {
			fmt.Printf("%-10s %-12s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "starnuma: -exp required (or -list); e.g. -exp fig8a")
		os.Exit(2)
	}

	opts, err := cli.Options(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "starnuma: %v\n", err)
		os.Exit(1)
	}
	r := exp.NewRunner(opts)
	table, err := r.ByID(*expID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "starnuma: %v\n", err)
		os.Exit(1)
	}
	var out string
	if *chart >= 0 {
		out, err = table.BarChart(*chart, 48)
	} else {
		out, err = table.Format(*format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "starnuma: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
	if cli.Metrics != "" {
		if err := r.WriteManifest(cli.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "starnuma: %v\n", err)
			os.Exit(1)
		}
	}
	if cli.Attrib != "" {
		if err := r.WriteStallProfiles(cli.Attrib); err != nil {
			fmt.Fprintf(os.Stderr, "starnuma: %v\n", err)
			os.Exit(1)
		}
	}
	if err := r.WriteTrace(); err != nil {
		fmt.Fprintf(os.Stderr, "starnuma: %v\n", err)
		os.Exit(1)
	}
}
