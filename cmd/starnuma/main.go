// Command starnuma runs one experiment of the StarNUMA reproduction and
// prints its table.
//
// Usage:
//
//	starnuma -exp fig8a [-quick] [-scale 0.25] [-phases 6] [-workloads BFS,TC]
//	starnuma -list
//
// Experiment identifiers follow the paper's figure/table numbers; see
// DESIGN.md §5 for the index.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"starnuma/internal/exp"
	"starnuma/internal/runner"
)

func main() {
	var (
		expID     = flag.String("exp", "", "experiment to run (e.g. fig8a, tab4); see -list")
		list      = flag.Bool("list", false, "list experiment identifiers and exit")
		quick     = flag.Bool("quick", false, "use the quick (small) configuration")
		scale     = flag.Float64("scale", 0, "override workload footprint scale")
		phases    = flag.Int("phases", 0, "override number of phases")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		format    = flag.String("format", "text", "output format: text, csv, md")
		chart     = flag.Int("chart", -1, "render the given column index as ASCII bars instead")
		jobs      = flag.Int("jobs", 0, "parallel worker slots (0 = GOMAXPROCS)")
		cacheDir  = flag.String("cache", runner.DefaultCacheDir, "result cache directory")
		noCache   = flag.Bool("nocache", false, "disable the persistent result cache")
		progress  = flag.Bool("progress", false, "report job progress on stderr")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "starnuma: -exp required (or -list); e.g. -exp fig8a")
		os.Exit(2)
	}

	opts := exp.Default()
	if *quick {
		opts = exp.Quick()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *phases > 0 {
		opts.Sim.Phases = *phases
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	opts.Jobs = *jobs
	if !*noCache {
		opts.CacheDir = *cacheDir
	}
	if *progress {
		opts.Reporter = runner.NewTerminalReporter(os.Stderr)
	}

	table, err := exp.NewRunner(opts).ByID(*expID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "starnuma: %v\n", err)
		os.Exit(1)
	}
	var out string
	if *chart >= 0 {
		out, err = table.BarChart(*chart, 48)
	} else {
		out, err = table.Format(*format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "starnuma: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
