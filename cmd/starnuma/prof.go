package main

import (
	"flag"
	"fmt"
	"os"

	"starnuma/internal/attrib"
)

const profUsage = `usage: starnuma prof <command> [flags] <profiles.json> [b.json]

Commands:
  report  per-run stall breakdown by category (and socket)
  diff    category share shift between two documents or two groups
  flame   folded stacks (flamegraph.pl format) or speedscope JSON

Flags:
  report: [-sockets] [-require] profiles.json
      -sockets   also print the per-socket stall split
      -require   exit 3 unless every profile conserves stall time exactly
  diff:   [-a substr] [-b substr] a.json [b.json]
      -a/-b      group runs by key/workload/policy substring; with one
                 file both groups come from it, with two files -a
                 filters the first and -b the second
  flame:  [-speedscope out.json] profiles.json
      -speedscope  write a speedscope sampled profile to this file
                   instead of printing folded stacks

Profile documents come from any experiment run with -attrib, e.g.
starnuma -exp fig8a -quick -attrib profiles.json.
`

// profMain implements the `starnuma prof` subcommands over stall
// attribution documents written by -attrib (internal/attrib).
func profMain(args []string) int {
	if len(args) == 0 || args[0] == "-h" || args[0] == "-help" || args[0] == "help" {
		fmt.Fprint(os.Stderr, profUsage)
		if len(args) == 0 {
			return exitUsage
		}
		return exitOK
	}
	switch args[0] {
	case "report":
		return profReport(args[1:])
	case "diff":
		return profDiff(args[1:])
	case "flame":
		return profFlame(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "starnuma prof: unknown command %q\n%s", args[0], profUsage)
		return exitUsage
	}
}

// loadProfDoc reads and validates one stall-profile document.
func loadProfDoc(path string) (*attrib.Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return attrib.DecodeDoc(data)
}

func profReport(args []string) int {
	fs := flag.NewFlagSet("starnuma prof report", flag.ContinueOnError)
	sockets := fs.Bool("sockets", false, "also print the per-socket stall split")
	require := fs.Bool("require", false, "exit 3 unless every profile conserves stall time exactly")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprint(os.Stderr, profUsage)
		return exitUsage
	}
	d, err := loadProfDoc(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "starnuma prof: %v\n", err)
		return exitRuntime
	}
	code := exitOK
	if *require {
		for i := range d.Runs {
			if err := d.Runs[i].Profile.CheckConservation(); err != nil {
				fmt.Fprintf(os.Stderr, "starnuma prof: run %s: %v\n", d.Runs[i].Key, err)
				code = exitAssertion
			}
		}
	}
	fmt.Print(attrib.RenderReport(d, *sockets))
	return code
}

func profDiff(args []string) int {
	fs := flag.NewFlagSet("starnuma prof diff", flag.ContinueOnError)
	aSub := fs.String("a", "", "substring selecting the A group (key/workload/policy)")
	bSub := fs.String("b", "", "substring selecting the B group (key/workload/policy)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 1 && fs.NArg() != 2 {
		fmt.Fprint(os.Stderr, profUsage)
		return exitUsage
	}
	da, err := loadProfDoc(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "starnuma prof: %v\n", err)
		return exitRuntime
	}
	db := da
	labelA, labelB := fs.Arg(0), fs.Arg(0)
	if fs.NArg() == 2 {
		if db, err = loadProfDoc(fs.Arg(1)); err != nil {
			fmt.Fprintf(os.Stderr, "starnuma prof: %v\n", err)
			return exitRuntime
		}
		labelB = fs.Arg(1)
	} else if *aSub == "" && *bSub == "" {
		fmt.Fprintln(os.Stderr, "starnuma prof diff: one document needs -a and/or -b to form two groups")
		return exitUsage
	}
	if *aSub != "" {
		labelA += ":" + *aSub
	}
	if *bSub != "" {
		labelB += ":" + *bSub
	}
	ta, runsA, skipA := da.GroupTotals(*aSub)
	tb, runsB, skipB := db.GroupTotals(*bSub)
	if runsA == 0 || runsB == 0 {
		fmt.Fprintf(os.Stderr, "starnuma prof diff: empty group (a: %d runs, b: %d runs)\n", runsA, runsB)
		return exitRuntime
	}
	if skipA+skipB > 0 {
		fmt.Fprintf(os.Stderr, "starnuma prof diff: skipped %d runs with mismatched categories\n", skipA+skipB)
	}
	fmt.Print(attrib.RenderDiff(labelA, labelB, ta, tb))
	return exitOK
}

func profFlame(args []string) int {
	fs := flag.NewFlagSet("starnuma prof flame", flag.ContinueOnError)
	speedscope := fs.String("speedscope", "", "write a speedscope sampled profile to this file")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprint(os.Stderr, profUsage)
		return exitUsage
	}
	d, err := loadProfDoc(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "starnuma prof: %v\n", err)
		return exitRuntime
	}
	if *speedscope != "" {
		b, err := attrib.RenderSpeedscope(d)
		if err == nil {
			err = os.WriteFile(*speedscope, b, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "starnuma prof: %v\n", err)
			return exitRuntime
		}
		return exitOK
	}
	fmt.Print(attrib.RenderFolded(d))
	return exitOK
}
