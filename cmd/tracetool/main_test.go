package main

import (
	"testing"

	"starnuma/internal/evtrace"
	"starnuma/internal/sim"
)

func TestParseTime(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Time
	}{
		{"0", 0},
		{"1500", 1500},
		{"1500ps", 1500},
		{"2ns", 2 * sim.Nanosecond},
		{"1.5us", sim.Microsecond + 500*sim.Nanosecond},
		{"3ms", 3 * sim.Millisecond},
	}
	for _, c := range cases {
		got, err := parseTime(c.in)
		if err != nil {
			t.Fatalf("parseTime(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("parseTime(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	if _, err := parseTime("abcus"); err == nil {
		t.Error("parseTime(abcus) should fail")
	}
}

func TestFilter(t *testing.T) {
	buf := evtrace.NewBuffer()
	buf.Span("window", "w0", "sim", 0, 10*sim.Microsecond)
	buf.Span("migrate", "m", "socket0", 5*sim.Microsecond, sim.Microsecond)
	buf.Instant("tlb", "shoot", "socket1", 20*sim.Microsecond)

	bd := evtrace.NewBuilder()
	bd.Add("", buf)
	tr := bd.Build()
	meta := 0
	for _, e := range tr.Events {
		if e.Ph == evtrace.PhMeta {
			meta++
		}
	}

	// Category filter keeps metadata plus the matching events.
	got := filter(tr, 0, 0, map[string]bool{"migrate": true})
	if want := meta + 1; len(got.Events) != want {
		t.Errorf("cat filter: %d events, want %d", len(got.Events), want)
	}

	// Time filter: [0, 4us] overlaps the window span only.
	got = filter(tr, 0, 4*sim.Microsecond, nil)
	if want := meta + 1; len(got.Events) != want {
		t.Errorf("time filter: %d events, want %d", len(got.Events), want)
	}

	// Unbounded end keeps everything.
	got = filter(tr, 0, 0, nil)
	if len(got.Events) != len(tr.Events) {
		t.Errorf("no-op filter: %d events, want %d", len(got.Events), len(tr.Events))
	}
}

func TestCatSet(t *testing.T) {
	if catSet("") != nil {
		t.Error("empty list should be nil (match all)")
	}
	set := catSet("migrate, window,")
	if len(set) != 2 || !set["migrate"] || !set["window"] {
		t.Errorf("catSet = %v", set)
	}
}
