// Command tracetool inspects event traces recorded with -trace
// (internal/evtrace Chrome trace_event JSON).
//
// Usage:
//
//	tracetool summarize [-require migrate,window] trace.json
//	tracetool slice -from 0 -to 50us [-cat migrate,tlb] trace.json
//	tracetool top [-n 10] [-cat coherence] trace.json
//	tracetool export [-o out.json] trace.json
//
// summarize prints per-category event/span counts and durations, and
// with -require exits nonzero unless every listed category recorded at
// least one event (the CI smoke gate). slice filters by time range
// and/or categories and re-encodes the result. top lists the longest
// spans. export validates and canonically re-encodes a trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"starnuma/internal/evtrace"
	"starnuma/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "summarize":
		err = summarize(os.Args[2:])
	case "slice":
		err = slice(os.Args[2:])
	case "top":
		err = top(os.Args[2:])
	case "export":
		err = export(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tracetool: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tracetool summarize [-require cats] trace.json
  tracetool slice -from T -to T [-cat cats] [-o out.json] trace.json
  tracetool top [-n N] [-cat cats] trace.json
  tracetool export [-o out.json] trace.json
times accept ps (bare), ns, us, ms suffixes; cats are comma-separated`)
}

// load reads and decodes the single positional trace argument.
func load(fs *flag.FlagSet, args []string) (*evtrace.Trace, error) {
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one trace file, got %d args", fs.NArg())
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return nil, err
	}
	return evtrace.Decode(data)
}

// parseTime parses a time operand: picoseconds bare, or with an
// ns/us/ms suffix.
func parseTime(s string) (sim.Time, error) {
	mult := sim.Time(1)
	switch {
	case strings.HasSuffix(s, "ms"):
		s, mult = strings.TrimSuffix(s, "ms"), sim.Millisecond
	case strings.HasSuffix(s, "us"):
		s, mult = strings.TrimSuffix(s, "us"), sim.Microsecond
	case strings.HasSuffix(s, "ns"):
		s, mult = strings.TrimSuffix(s, "ns"), sim.Nanosecond
	case strings.HasSuffix(s, "ps"):
		s = strings.TrimSuffix(s, "ps")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time %q: %w", s, err)
	}
	return sim.Time(v * float64(mult)), nil
}

// catSet parses a comma-separated category list; nil means "all".
func catSet(s string) map[string]bool {
	if s == "" {
		return nil
	}
	set := make(map[string]bool)
	for _, c := range strings.Split(s, ",") {
		if c = strings.TrimSpace(c); c != "" {
			set[c] = true
		}
	}
	return set
}

func summarize(args []string) error {
	fs := flag.NewFlagSet("summarize", flag.ContinueOnError)
	require := fs.String("require", "", "comma-separated categories that must have recorded events (exit 1 otherwise)")
	tr, err := load(fs, args)
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return err
	}
	stats := tr.CatStats()
	fmt.Printf("%-12s %8s %8s %14s %14s\n", "category", "events", "spans", "total", "max")
	var total int
	for _, st := range stats {
		total += st.Events
		fmt.Printf("%-12s %8d %8d %13.3fus %13.3fus\n",
			st.Cat, st.Events, st.Spans, st.TotalDur.Nanos()/1000, st.MaxDur.Nanos()/1000)
	}
	fmt.Printf("%d events in %d categories\n", total, len(stats))
	if *require != "" {
		byCat := make(map[string]int)
		for _, st := range stats {
			byCat[st.Cat] = st.Events
		}
		var missing []string
		for c := range catSet(*require) {
			if byCat[c] == 0 {
				missing = append(missing, c)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			return fmt.Errorf("required categories with no events: %s", strings.Join(missing, ", "))
		}
	}
	return nil
}

// filter returns the events within [from, to] (spans by overlap) whose
// category is in cats (nil = all). Metadata events always pass so the
// sliced trace stays schema-valid.
func filter(tr *evtrace.Trace, from, to sim.Time, cats map[string]bool) *evtrace.Trace {
	out := &evtrace.Trace{}
	for _, e := range tr.Events {
		if e.Ph == evtrace.PhMeta {
			out.Events = append(out.Events, e)
			continue
		}
		if cats != nil && !cats[e.Cat] {
			continue
		}
		if e.Ts+e.Dur < from || (to > 0 && e.Ts > to) {
			continue
		}
		out.Events = append(out.Events, e)
	}
	return out
}

func slice(args []string) error {
	fs := flag.NewFlagSet("slice", flag.ContinueOnError)
	fromS := fs.String("from", "0", "range start (e.g. 10us)")
	toS := fs.String("to", "0", "range end (0 = unbounded)")
	cat := fs.String("cat", "", "comma-separated category filter")
	out := fs.String("o", "", "output file (default stdout)")
	tr, err := load(fs, args)
	if err != nil {
		return err
	}
	from, err := parseTime(*fromS)
	if err != nil {
		return err
	}
	to, err := parseTime(*toS)
	if err != nil {
		return err
	}
	b, err := filter(tr, from, to, catSet(*cat)).Encode()
	if err != nil {
		return err
	}
	return writeOut(*out, b)
}

func top(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	n := fs.Int("n", 10, "number of spans to list")
	cat := fs.String("cat", "", "comma-separated category filter")
	tr, err := load(fs, args)
	if err != nil {
		return err
	}
	cats := catSet(*cat)
	var spans []evtrace.TraceEvent
	for _, e := range tr.Events {
		if e.Ph != evtrace.PhSpan || (cats != nil && !cats[e.Cat]) {
			continue
		}
		spans = append(spans, e)
	}
	// Longest first; ties break on (ts, name) so output is stable.
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Dur != spans[j].Dur {
			return spans[i].Dur > spans[j].Dur
		}
		if spans[i].Ts != spans[j].Ts {
			return spans[i].Ts < spans[j].Ts
		}
		return spans[i].Name < spans[j].Name
	})
	if len(spans) > *n {
		spans = spans[:*n]
	}
	fmt.Printf("%-12s %-24s %14s %14s\n", "category", "name", "ts", "dur")
	for _, e := range spans {
		fmt.Printf("%-12s %-24s %13.3fus %13.3fus\n",
			e.Cat, e.Name, e.Ts.Nanos()/1000, e.Dur.Nanos()/1000)
	}
	return nil
}

func export(args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	tr, err := load(fs, args)
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return err
	}
	b, err := tr.Encode()
	if err != nil {
		return err
	}
	return writeOut(*out, b)
}

func writeOut(path string, b []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
