// Command expall runs the entire StarNUMA experiment suite and writes
// every table to stdout (and optionally a file), in the paper's order.
//
// Usage:
//
//	expall [-quick] [-scale 0.25] [-jobs N] [-o results.txt]
//	       [-nocache] [-cache DIR] [-benchjson BENCH_expall.json]
//	       [-metrics manifest.json] [-attrib profiles.json] [-faults plan.json]
//	       [-trace trace.json] [-cpuprofile cpu.pprof] [-pprof :6060]
//
// Experiments execute on internal/runner's parallel scheduler (-jobs
// worker slots, default GOMAXPROCS) with a persistent result cache
// under -cache (default .starnuma-cache; -nocache disables it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"starnuma/internal/exp"
	"starnuma/internal/prof"
)

// benchExperiment is one per-experiment timing record of -benchjson.
// Windows counts the step-C windows actually simulated for the
// experiment, and WindowsPerSec is the simulation throughput those
// windows achieved. Experiments whose runs all came from the in-suite
// memo or the result cache simulate nothing; their Windows is 0 and
// WindowsPerSec is omitted rather than written as a misleading 0.
type benchExperiment struct {
	ID            string  `json:"id"`
	Seconds       float64 `json:"seconds"`
	Windows       int64   `json:"windows"`
	WindowsPerSec float64 `json:"windows_per_sec,omitempty"`
}

// benchReport is the -benchjson document. WindowsPerSec is the suite's
// overall step-C throughput — the headline number docs/PERFORMANCE.md's
// methodology tracks and CI's bench-regress step gates on; it is only
// meaningful for cache-disabled runs (windows_done is 0 on a full
// cache hit).
type benchReport struct {
	Timestamp     string            `json:"timestamp"`
	Quick         bool              `json:"quick"`
	Scale         float64           `json:"scale"`
	Jobs          int               `json:"jobs"`
	SuiteSeconds  float64           `json:"suite_seconds"`
	CacheHits     int64             `json:"cache_hits"`
	CacheMisses   int64             `json:"cache_misses"`
	WindowsDone   int64             `json:"windows_done"`
	WindowsPerSec float64           `json:"windows_per_sec"`
	Experiments   []benchExperiment `json:"experiments"`
}

func main() {
	var (
		out       = flag.String("o", "", "also write results to this file")
		format    = flag.String("format", "text", "output format: text, csv, md")
		benchJSON = flag.String("benchjson", "", "write suite/per-experiment timings to this JSON file")
	)
	cli := exp.AddCLIFlags(flag.CommandLine, true)
	pf := prof.AddFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "expall: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	opts, err := cli.Options(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "expall: %v\n", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expall: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	start := time.Now()
	r := exp.NewRunner(opts)
	fmt.Fprintf(w, "StarNUMA reproduction — full experiment suite\n")
	fmt.Fprintf(w, "scale=%v phases=%d phaseInstr=%d timedInstr=%d jobs=%d\n\n",
		opts.Scale, opts.Sim.Phases, opts.Sim.PhaseInstr, opts.Sim.TimedInstr,
		r.Exec().Jobs())

	var timings []benchExperiment
	for _, id := range exp.IDs() {
		t0 := time.Now()
		prevWindows := r.Exec().Metrics().WindowsDone
		table, err := r.ByID(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expall: %s: %v\n", id, err)
			os.Exit(1)
		}
		secs := time.Since(t0).Seconds()
		windows := r.Exec().Metrics().WindowsDone - prevWindows
		wps := 0.0
		if secs > 0 {
			wps = float64(windows) / secs
		}
		timings = append(timings, benchExperiment{ID: id, Seconds: secs, Windows: windows, WindowsPerSec: wps})
		rendered, err := table.Format(*format)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expall: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(w, rendered)
	}
	elapsed := time.Since(start)
	m := r.Exec().Metrics()
	fmt.Fprintf(w, "completed in %v (%d runs, %d windows, cache %d hit / %d miss)\n",
		elapsed.Round(time.Second), m.RunsDone, m.WindowsDone, m.CacheHits, m.CacheMisses)

	if cli.Metrics != "" {
		if err := r.WriteManifest(cli.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "expall: %v\n", err)
			os.Exit(1)
		}
	}
	if cli.Attrib != "" {
		if err := r.WriteStallProfiles(cli.Attrib); err != nil {
			fmt.Fprintf(os.Stderr, "expall: %v\n", err)
			os.Exit(1)
		}
	}
	if err := r.WriteTrace(); err != nil {
		fmt.Fprintf(os.Stderr, "expall: %v\n", err)
		os.Exit(1)
	}
	if *benchJSON != "" {
		report := benchReport{
			Timestamp:    start.UTC().Format(time.RFC3339),
			Quick:        cli.Quick,
			Scale:        opts.Scale,
			Jobs:         r.Exec().Jobs(),
			SuiteSeconds: elapsed.Seconds(),
			CacheHits:    m.CacheHits,
			CacheMisses:  m.CacheMisses,
			WindowsDone:  m.WindowsDone,
			Experiments:  timings,
		}
		if report.SuiteSeconds > 0 {
			report.WindowsPerSec = float64(report.WindowsDone) / report.SuiteSeconds
		}
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "expall: benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchJSON, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "expall: benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}
