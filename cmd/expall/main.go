// Command expall runs the entire StarNUMA experiment suite and writes
// every table to stdout (and optionally a file), in the paper's order.
//
// Usage:
//
//	expall [-quick] [-scale 0.25] [-o results.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"starnuma/internal/exp"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "use the quick (small) configuration")
		scale  = flag.Float64("scale", 0, "override workload footprint scale")
		out    = flag.String("o", "", "also write results to this file")
		format = flag.String("format", "text", "output format: text, csv, md")
	)
	flag.Parse()

	opts := exp.Default()
	if *quick {
		opts = exp.Quick()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expall: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	start := time.Now()
	runner := exp.NewRunner(opts)
	tables, err := runner.All()
	if err != nil {
		fmt.Fprintf(os.Stderr, "expall: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(w, "StarNUMA reproduction — full experiment suite\n")
	fmt.Fprintf(w, "scale=%v phases=%d phaseInstr=%d timedInstr=%d\n\n",
		opts.Scale, opts.Sim.Phases, opts.Sim.PhaseInstr, opts.Sim.TimedInstr)
	for _, t := range tables {
		rendered, err := t.Format(*format)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expall: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(w, rendered)
	}
	fmt.Fprintf(w, "completed in %v\n", time.Since(start).Round(time.Second))
}
