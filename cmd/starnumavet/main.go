// Command starnumavet mechanically enforces the simulator's
// determinism, units, hot-path, and observability contracts
// (docs/STATIC_ANALYSIS.md catalogues every analyzer).
//
// Standalone:
//
//	go run ./cmd/starnumavet ./...
//	go run ./cmd/starnumavet -json -baseline lint.baseline.json ./...
//
// As a go vet tool:
//
//	go build -o /tmp/starnumavet ./cmd/starnumavet
//	go vet -vettool=/tmp/starnumavet ./...
//
// Analyzers: detclock (no wall clock / env in simulation packages),
// seedrand (RNGs flow from explicit config seeds), maporder (no
// order-dependent effects under map iteration), cycleunits (no silent
// crossing of sim.Time / sim.Cycles / link.GBps), hotalloc
// (allocation-free //starnuma:hotpath perimeter), metricname (metric
// names fit the namespace grammar and are documented), floatdet (no
// float == / != in simulation packages), allowcheck (allow directives
// are well-formed and still needed).
package main

import (
	"starnuma/internal/lint/analysis"
	"starnuma/internal/lint/suite"
)

func main() {
	analysis.Main(suite.Analyzers()...)
}
