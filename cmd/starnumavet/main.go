// Command starnumavet mechanically enforces the simulator's
// determinism and units contract (README.md "Static analysis").
//
// Standalone:
//
//	go run ./cmd/starnumavet ./...
//
// As a go vet tool (what CI runs):
//
//	go build -o /tmp/starnumavet ./cmd/starnumavet
//	go vet -vettool=/tmp/starnumavet ./...
//
// Analyzers: detclock (no wall clock / env in simulation packages),
// seedrand (RNGs flow from explicit config seeds), maporder (no
// order-dependent effects under map iteration), cycleunits (no silent
// crossing of sim.Time / sim.Cycles / link.GBps).
package main

import (
	"starnuma/internal/lint/analysis"
	"starnuma/internal/lint/cycleunits"
	"starnuma/internal/lint/detclock"
	"starnuma/internal/lint/maporder"
	"starnuma/internal/lint/seedrand"
)

func main() {
	analysis.Main(
		detclock.Analyzer,
		seedrand.Analyzer,
		maporder.Analyzer,
		cycleunits.Analyzer,
	)
}
