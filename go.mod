module starnuma

go 1.22
