package starnuma

// One benchmark per table/figure of the paper's evaluation (§V). Each
// bench regenerates its artifact at a reduced scale and reports the
// headline quantity via b.ReportMetric; run with -v to see the full
// tables. The shared runner memoises simulations, so benches that share
// configurations (fig8a/b/c, tab4, ...) pay for them once.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig8aSpeedup -v

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"starnuma/internal/core"
	"starnuma/internal/evtrace"
	"starnuma/internal/exp"
	"starnuma/internal/memdev"
	"starnuma/internal/sim"
	"starnuma/internal/workload"
)

// benchOptions is the scale used by all root benches: small enough that
// the full set completes in a few minutes, large enough that the
// paper's shape is visible.
func benchOptions() exp.Options {
	o := exp.Quick()
	o.Scale = 0.125
	return o
}

var (
	runnerOnce sync.Once
	runner     *exp.Runner
)

func sharedRunner() *exp.Runner {
	runnerOnce.Do(func() { runner = exp.NewRunner(benchOptions()) })
	return runner
}

// cell parses a numeric table cell ("1.54x", "48.0%", "360ns").
func cell(b *testing.B, s string) float64 {
	b.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s, "x"), "%"), "ns")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("unparseable cell %q", s)
	}
	return v
}

// lastRow returns the table's final row (gmean/mean summaries).
func lastRow(t *exp.Table) []string { return t.Rows[len(t.Rows)-1] }

func runTable(b *testing.B, f func() (*exp.Table, error)) *exp.Table {
	b.Helper()
	var tbl *exp.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = f()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.Render())
	return tbl
}

// BenchmarkFig2SharingBFS regenerates Fig. 2: BFS page sharing-degree
// and access distributions.
func BenchmarkFig2SharingBFS(b *testing.B) {
	tbl := runTable(b, sharedRunner().Fig2)
	// Accesses to 16-shared pages (paper: 36%).
	b.ReportMetric(cell(b, tbl.Rows[len(tbl.Rows)-1][4]), "%accesses-16-shared")
}

// BenchmarkFig13SharingTC regenerates Fig. 13: TC distributions.
func BenchmarkFig13SharingTC(b *testing.B) {
	tbl := runTable(b, sharedRunner().Fig13)
	b.ReportMetric(cell(b, tbl.Rows[len(tbl.Rows)-1][2]), "%pages-16-shared")
}

// BenchmarkFig3CXLLatency regenerates Fig. 3: the pool access latency
// budget.
func BenchmarkFig3CXLLatency(b *testing.B) {
	tbl := runTable(b, func() (*exp.Table, error) { return exp.Fig3(), nil })
	b.ReportMetric(cell(b, tbl.Rows[6][1]), "ns-end-to-end")
}

// BenchmarkFig4BlockTransfer regenerates Fig. 4: 3-hop vs 4-hop block
// transfer latency.
func BenchmarkFig4BlockTransfer(b *testing.B) {
	tbl := runTable(b, func() (*exp.Table, error) { return exp.Fig4(), nil })
	b.ReportMetric(cell(b, tbl.Rows[0][1]), "ns-3hop")
	b.ReportMetric(cell(b, tbl.Rows[1][1]), "ns-4hop")
}

// BenchmarkTable3WorkloadIPC regenerates Table III: per-workload IPC and
// MPKI on single-socket and 16-socket systems.
func BenchmarkTable3WorkloadIPC(b *testing.B) {
	tbl := runTable(b, sharedRunner().Table3)
	// POA's 16-socket IPC should match its single-socket IPC (paper:
	// 0.68 in both columns).
	last := lastRow(tbl)
	b.ReportMetric(cell(b, last[1]), "ipc16-"+last[0])
}

// BenchmarkFig8aSpeedup regenerates Fig. 8a: StarNUMA speedup with T16
// and T0 trackers (paper: 1.54x and 1.35x geometric mean).
func BenchmarkFig8aSpeedup(b *testing.B) {
	tbl := runTable(b, sharedRunner().Fig8a)
	gm := lastRow(tbl)
	b.ReportMetric(cell(b, gm[1]), "gmean-speedup-T16")
	b.ReportMetric(cell(b, gm[2]), "gmean-speedup-T0")
}

// BenchmarkFig8bAMAT regenerates Fig. 8b: AMAT decomposition (paper:
// 48% average AMAT reduction).
func BenchmarkFig8bAMAT(b *testing.B) {
	tbl := runTable(b, sharedRunner().Fig8b)
	b.ReportMetric(cell(b, lastRow(tbl)[7]), "%amat-reduction")
}

// BenchmarkFig8cBreakdown regenerates Fig. 8c: the memory access type
// breakdown.
func BenchmarkFig8cBreakdown(b *testing.B) {
	tbl := runTable(b, sharedRunner().Fig8c)
	b.ReportMetric(float64(len(tbl.Rows)), "rows")
}

// BenchmarkTable4PoolMigrations regenerates Table IV: the fraction of
// migrations targeting the pool (paper gmean excl. POA: 83%).
func BenchmarkTable4PoolMigrations(b *testing.B) {
	tbl := runTable(b, sharedRunner().Table4)
	// BFS row (paper: 100%).
	for _, row := range tbl.Rows {
		if row[0] == "BFS" {
			b.ReportMetric(cell(b, row[1]), "%BFS-to-pool")
		}
	}
}

// BenchmarkFig9StaticOracle regenerates Fig. 9: oracular static
// placement vs dynamic migration.
func BenchmarkFig9StaticOracle(b *testing.B) {
	tbl := runTable(b, sharedRunner().Fig9)
	gm := lastRow(tbl)
	b.ReportMetric(cell(b, gm[1]), "gmean-baseline-static")
	b.ReportMetric(cell(b, gm[2]), "gmean-starnuma-static")
}

// BenchmarkFig10PoolLatency regenerates Fig. 10: sensitivity to the CXL
// latency penalty (paper: 1.54x -> 1.34x at 190ns).
func BenchmarkFig10PoolLatency(b *testing.B) {
	tbl := runTable(b, sharedRunner().Fig10)
	gm := lastRow(tbl)
	b.ReportMetric(cell(b, gm[1]), "gmean-100ns")
	b.ReportMetric(cell(b, gm[2]), "gmean-190ns")
}

// BenchmarkFig11Bandwidth regenerates Fig. 11: bandwidth provisioning
// (ISO-BW, 2xBW, Half-BW).
func BenchmarkFig11Bandwidth(b *testing.B) {
	tbl := runTable(b, sharedRunner().Fig11)
	gm := lastRow(tbl)
	b.ReportMetric(cell(b, gm[1]), "gmean-isobw")
	b.ReportMetric(cell(b, gm[2]), "gmean-2xbw")
	b.ReportMetric(cell(b, gm[3]), "gmean-halfbw")
	b.ReportMetric(cell(b, gm[4]), "gmean-starnuma")
}

// BenchmarkFig12PoolCapacity regenerates Fig. 12: pool capacity
// sensitivity (paper: 1.54x -> 1.48x at 1/17).
func BenchmarkFig12PoolCapacity(b *testing.B) {
	tbl := runTable(b, sharedRunner().Fig12)
	gm := lastRow(tbl)
	b.ReportMetric(cell(b, gm[1]), "gmean-1/5")
	b.ReportMetric(cell(b, gm[2]), "gmean-1/17")
}

// BenchmarkFig14SimConfigs regenerates Fig. 14: methodology robustness
// under SC2 (3x window) and SC3 (2x system scale).
func BenchmarkFig14SimConfigs(b *testing.B) {
	tbl := runTable(b, sharedRunner().Fig14)
	for _, row := range tbl.Rows {
		if row[0] == "BFS" {
			b.ReportMetric(cell(b, row[1]), "BFS-SC1")
			b.ReportMetric(cell(b, row[3]), "BFS-SC3")
		}
	}
}

// BenchmarkAblationMigrationLimit sweeps Algorithm 1's per-phase
// migration limit (the paper explores 0-256K pages, §IV-C) on BFS.
func BenchmarkAblationMigrationLimit(b *testing.B) {
	for _, limit := range []int{0, 512, 4096, 32768} {
		limit := limit
		b.Run("limit="+strconv.Itoa(limit), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions()
				o.Sim.Migration.MigrationLimit = limit
				o.Workloads = []string{"BFS"}
				r := exp.NewRunner(o)
				tbl, err := r.Fig8a()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(cell(b, tbl.Rows[0][1]), "speedup")
			}
		})
	}
}

// BenchmarkAblationFirstTouchVsOracle compares first-touch + dynamic
// migration against oracular static placement on the baseline
// architecture (the paper's key negative result: no placement helps the
// baseline, because vagabond pages have no good home).
func BenchmarkAblationFirstTouchVsOracle(b *testing.B) {
	tbl := runTable(b, sharedRunner().Fig9)
	// Baseline+static gmean should hover around 1.0x (paper Fig. 9).
	b.ReportMetric(cell(b, lastRow(tbl)[1]), "gmean-baseline-static")
}

// BenchmarkExtReplication regenerates the §V-F extension study:
// replication vs pooling, including the naive read-write failure case.
func BenchmarkExtReplication(b *testing.B) {
	tbl := runTable(b, sharedRunner().ExtReplication)
	gm := lastRow(tbl)
	b.ReportMetric(cell(b, gm[1]), "gmean-repl")
	b.ReportMetric(cell(b, gm[4]), "gmean-starnuma+repl")
}

// BenchmarkExt32Sockets regenerates the §III-B extension study:
// StarNUMA at 32 sockets behind a CXL switch.
func BenchmarkExt32Sockets(b *testing.B) {
	tbl := runTable(b, sharedRunner().Ext32Sockets)
	gm := lastRow(tbl)
	b.ReportMetric(cell(b, gm[2]), "gmean-32socket")
}

// BenchmarkAblationRegionSize sweeps the tracking/migration granularity
// (§III-D4 discusses region sizing; the paper uses 512KB = 128 pages,
// scaled here).
func BenchmarkAblationRegionSize(b *testing.B) {
	for _, pages := range []int{8, 32, 128} {
		pages := pages
		b.Run("regionPages="+strconv.Itoa(pages), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions()
				o.Sim.RegionPages = pages
				o.Workloads = []string{"BFS"}
				tbl, err := exp.NewRunner(o).Fig8a()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(cell(b, tbl.Rows[0][1]), "speedup")
			}
		})
	}
}

// BenchmarkAblationPingPong toggles Algorithm 1's ping-pong suppression.
func BenchmarkAblationPingPong(b *testing.B) {
	for _, disable := range []bool{false, true} {
		disable := disable
		name := "suppressed"
		if disable {
			name = "unsuppressed"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions()
				o.Sim.Migration.DisablePingPong = disable
				o.Workloads = []string{"Masstree"}
				tbl, err := exp.NewRunner(o).Fig8a()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(cell(b, tbl.Rows[0][1]), "speedup")
			}
		})
	}
}

// BenchmarkAblationDirectBT forces pool-home block transfers onto the
// direct owner→requester path, ablating Fig. 4's 4-hop design point.
func BenchmarkAblationDirectBT(b *testing.B) {
	for _, direct := range []bool{false, true} {
		direct := direct
		name := "4hop-via-pool"
		if direct {
			name = "forced-direct"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions()
				o.Sim.ForceDirectBT = direct
				o.Workloads = []string{"Masstree"}
				tbl, err := exp.NewRunner(o).Fig8a()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(cell(b, tbl.Rows[0][1]), "speedup")
			}
		})
	}
}

// BenchmarkExtSoftwareTracking regenerates the §III-D1 extension study:
// hardware tracking vs OS page-poisoning samples.
func BenchmarkExtSoftwareTracking(b *testing.B) {
	tbl := runTable(b, sharedRunner().ExtSoftwareTracking)
	gm := lastRow(tbl)
	b.ReportMetric(cell(b, gm[1]), "gmean-hardware")
	b.ReportMetric(cell(b, gm[2]), "gmean-sample5pct")
}

// BenchmarkExtDrift regenerates the drift extension: dynamic migration
// vs static oracle under non-stationary page affinity.
func BenchmarkExtDrift(b *testing.B) {
	tbl := runTable(b, sharedRunner().ExtDrift)
	last := lastRow(tbl)
	b.ReportMetric(cell(b, last[2]), "static-oracle-at-max-drift")
}

// BenchmarkAblationBankedDRAM compares the simple fixed-latency DRAM
// channel model against the open-page bank model on BFS.
func BenchmarkAblationBankedDRAM(b *testing.B) {
	for _, banked := range []bool{false, true} {
		banked := banked
		name := "simple"
		if banked {
			name = "banked"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions()
				o.Workloads = []string{"BFS"}
				r := exp.NewRunner(o)
				if banked {
					// exp constructs systems internally; the banked
					// variant is exercised directly through core.
					spec := mustSpec(b, o, "BFS")
					sys := core.StarNUMASystem()
					hit, miss := memdev.DefaultBankLatencies()
					sys.SocketMem.BanksPerChannel = 8
					sys.SocketMem.RowHitLatency = hit
					sys.SocketMem.RowMissLatency = miss
					res, err := core.Run(sys, o.Sim, spec)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.IPC, "ipc")
					continue
				}
				tbl, err := r.Fig8a()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(cell(b, tbl.Rows[0][1]), "speedup")
			}
		})
	}
}

func mustSpec(b *testing.B, o exp.Options, name string) workload.Spec {
	b.Helper()
	spec, err := workload.ByName(name, o.Scale)
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

var _ = core.BaselineSystem // documentation anchor: benches drive internal/core via internal/exp

// BenchmarkEvtraceDisabled pins the tracing-off hot path at zero
// allocations: a nil *evtrace.Buffer must make Span/Instant free, so
// untraced simulations pay nothing for the instrumentation points.
func BenchmarkEvtraceDisabled(b *testing.B) {
	var trc *evtrace.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trc.Span("window", "w", "sim", 0, sim.Microsecond)
		trc.Instant("migrate", "decide", "stepB", 0)
	}
	if trc.Len() != 0 {
		b.Fatal("nil buffer recorded events")
	}
}
